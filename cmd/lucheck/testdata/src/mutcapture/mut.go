// Package mutcapture is a mutation fixture: a scheduler-style error
// counter with the lock deleted from the helper while the workers
// still call it concurrently through a captured pointer. The write is
// one call below the worker closure, out of the intra-procedural
// rule's sight; the test asserts the interprocedural shared-capture
// rule detects this mutant.
package mutcapture

import "sync"

// noteError is the mutated helper: the mu.Lock()/Unlock() pair around
// the write was removed.
func noteError(count *int) {
	*count++ // want shared-capture
}

// Drain spawns the workers that hand &failed to noteError.
func Drain(tasks <-chan int, workers int) int {
	failed := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range tasks {
				noteError(&failed)
			}
		}()
	}
	wg.Wait()
	return failed
}
