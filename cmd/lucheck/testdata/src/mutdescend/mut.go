// Package mutdescend is a mutation fixture: the reference BLAS-3
// micro-kernel with its k loop mutated to run DESCENDING. The partial
// sums then reassociate against the pinned ascending-k order the
// bitwise-determinism contract requires. The test asserts the
// fp-reassoc rule detects this mutant.
package mutdescend

// DgemmRef is the mutated kernel: C += A*B with the dot products
// summed backward.
func DgemmRef(m, n, kk int, a, b, c []float64) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			sum := c[i*n+j]
			for k := kk - 1; k >= 0; k-- {
				sum += a[i*kk+k] * b[k*n+j] // want fp-reassoc
			}
			c[i*n+j] = sum
		}
	}
}
