package main

// The loader parses and type-checks every package of the module using
// nothing but the standard library: go/parser for syntax, go/types for
// semantics, and the "source" importer for standard-library
// dependencies. Module-internal imports are resolved against the
// packages we parse ourselves, type-checked in dependency order, so the
// whole module gets full type information without golang.org/x/tools.

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// pkgInfo is one parsed and type-checked package.
type pkgInfo struct {
	path  string // import path, e.g. repro/internal/sparse
	dir   string
	name  string // package name from the source
	files []*ast.File
	info  *types.Info
	pkg   *types.Package
}

// moduleRoot walks up from dir to the enclosing go.mod and returns the
// module directory and module path.
func moduleRoot(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// chainImporter resolves module-internal import paths from the loaded
// set and everything else (the standard library) from the source
// importer.
type chainImporter struct {
	local map[string]*types.Package
	std   types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.local[path]; ok {
		return p, nil
	}
	return c.std.Import(path)
}

// loadModule parses and type-checks every non-test package under root.
// extra maps additional import paths to directories (used by the tests
// to load deliberately-violating fixtures under a virtual path).
func loadModule(fset *token.FileSet, root, modPath string, extra map[string]string) ([]*pkgInfo, error) {
	dirs := map[string]string{} // import path -> dir
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				rel, err := filepath.Rel(root, p)
				if err != nil {
					return err
				}
				ip := modPath
				if rel != "." {
					ip = modPath + "/" + filepath.ToSlash(rel)
				}
				dirs[ip] = p
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ip, dir := range extra {
		dirs[ip] = dir
	}

	// Parse every package.
	pkgs := map[string]*pkgInfo{}
	for ip, dir := range dirs {
		pi := &pkgInfo{path: ip, dir: dir}
		ents, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		for _, e := range ents {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			if !includeFile(dir, e.Name()) {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			pi.files = append(pi.files, f)
		}
		if len(pi.files) > 0 {
			pi.name = pi.files[0].Name.Name
			pkgs[ip] = pi
		}
	}

	order, err := topoSort(pkgs, modPath)
	if err != nil {
		return nil, err
	}

	imp := &chainImporter{
		local: map[string]*types.Package{},
		std:   importer.ForCompiler(fset, "source", nil),
	}
	for _, pi := range order {
		pi.info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(pi.path, fset, pi.files, pi.info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", pi.path, err)
		}
		pi.pkg = pkg
		imp.local[pi.path] = pkg
	}
	return order, nil
}

// knownArches and knownOSes drive the filename-suffix build convention
// (foo_amd64.go, foo_linux_arm64.go); only names in the lists count as
// constraints, matching the go tool's behavior.
var knownArches = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "mips64le": true,
	"mipsle": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

var knownOSes = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

// buildTagMatch is the tag evaluator for //go:build expressions: the
// host platform plus the gc compiler, mirroring what the go tool would
// select for a plain build.
func buildTagMatch(tag string) bool {
	return tag == runtime.GOOS || tag == runtime.GOARCH || tag == "gc"
}

// matchFileSuffix applies the _GOOS / _GOARCH / _GOOS_GOARCH filename
// convention for the host platform.
func matchFileSuffix(name string) bool {
	base := strings.TrimSuffix(name, ".go")
	parts := strings.Split(base, "_")
	if len(parts) < 2 {
		return true
	}
	last := parts[len(parts)-1]
	if knownArches[last] {
		if last != runtime.GOARCH {
			return false
		}
		if len(parts) >= 3 {
			if prev := parts[len(parts)-2]; knownOSes[prev] && prev != runtime.GOOS {
				return false
			}
		}
		return true
	}
	if knownOSes[last] {
		return last == runtime.GOOS
	}
	return true
}

// includeFile reports whether a source file participates in the build
// on the host platform: both the //go:build constraint line and the
// filename-suffix convention are honored, so per-architecture variants
// (the blas micro-kernel dispatch files) don't collide when the module
// is type-checked.
func includeFile(dir, name string) bool {
	if !matchFileSuffix(name) {
		return false
	}
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return false
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "//") {
			if expr, err := constraint.Parse(line); err == nil {
				return expr.Eval(buildTagMatch)
			}
			continue
		}
		// Reached the package clause (or other code): no constraint.
		break
	}
	return true
}

// topoSort orders the packages so every module-internal dependency is
// type-checked before its importers.
func topoSort(pkgs map[string]*pkgInfo, modPath string) ([]*pkgInfo, error) {
	paths := make([]string, 0, len(pkgs))
	for ip := range pkgs {
		paths = append(paths, ip)
	}
	sort.Strings(paths)

	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := map[string]int{}
	var order []*pkgInfo
	var visit func(ip string) error
	visit = func(ip string) error {
		switch state[ip] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("import cycle through %s", ip)
		}
		state[ip] = visiting
		pi := pkgs[ip]
		deps := map[string]bool{}
		for _, f := range pi.files {
			for _, spec := range f.Imports {
				dep, err := strconv.Unquote(spec.Path.Value)
				if err != nil {
					continue
				}
				if dep == modPath || strings.HasPrefix(dep, modPath+"/") {
					deps[dep] = true
				}
			}
		}
		depList := make([]string, 0, len(deps))
		for d := range deps {
			depList = append(depList, d)
		}
		sort.Strings(depList)
		for _, d := range depList {
			if _, ok := pkgs[d]; !ok {
				return fmt.Errorf("%s imports %s, which has no source in the module", ip, d)
			}
			if err := visit(d); err != nil {
				return err
			}
		}
		state[ip] = done
		order = append(order, pi)
		return nil
	}
	for _, ip := range paths {
		if err := visit(ip); err != nil {
			return nil, err
		}
	}
	return order, nil
}
