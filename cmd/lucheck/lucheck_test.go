package main

import (
	"errors"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// The module is parsed and type-checked once for all tests; the
// deliberately-violating fixtures ride along under virtual import
// paths so a single load serves the clean-repo test and every
// fixture-violation test.
const fixturePath = "repro/internal/badpkg"

// fixtureDirs maps each fixture's virtual import path to its
// testdata/src directory.
var fixtureDirs = map[string]string{
	fixturePath:                "badpkg",
	"repro/fixture/mofix":      "mofix",
	"repro/fixture/fpfix":      "fpfix",
	"repro/fixture/fpfast":     "fpfast",
	"repro/fixture/capfix":     "capfix",
	"repro/fixture/cgfix":      "cgfix",
	"repro/fixture/justfix":    "justfix",
	"repro/fixture/ctxfix":     "ctxfix",
	"repro/fixture/mutlevels":  "mutlevels",
	"repro/fixture/mutdescend": "mutdescend",
	"repro/fixture/mutcapture": "mutcapture",
	"repro/fixture/workfix":    "workfix",
}

var load = struct {
	once sync.Once
	fset *token.FileSet
	pkgs []*pkgInfo
	mod  string
	err  error
}{}

func loadOnce(t *testing.T) ([]*pkgInfo, *token.FileSet, string) {
	t.Helper()
	load.once.Do(func() {
		root, modPath, err := moduleRoot("../..")
		if err != nil {
			load.err = err
			return
		}
		load.mod = modPath
		load.fset = token.NewFileSet()
		extra := map[string]string{}
		for path, dir := range fixtureDirs {
			abs, err := filepath.Abs(filepath.Join("testdata", "src", dir))
			if err != nil {
				load.err = err
				return
			}
			extra[path] = abs
		}
		load.pkgs, load.err = loadModule(load.fset, root, modPath, extra)
	})
	if load.err != nil {
		t.Fatalf("loading module: %v", load.err)
	}
	return load.pkgs, load.fset, load.mod
}

// TestRepoClean is the acceptance gate: the repository itself must have
// zero findings.
func TestRepoClean(t *testing.T) {
	pkgs, fset, mod := loadOnce(t)
	var repo []*pkgInfo
	for _, pi := range pkgs {
		if _, isFixture := fixtureDirs[pi.path]; !isFixture {
			repo = append(repo, pi)
		}
	}
	if len(repo) < 10 {
		t.Fatalf("loaded only %d packages; module walk is broken", len(repo))
	}
	findings := analyzeAll(fset, repo, defaultConfig(mod))
	for _, f := range findings {
		t.Errorf("unexpected finding: %s", f)
	}
}

// TestFixtureViolations checks that every rule fires on the testdata
// fixture, that suppression comments are honored, and that legal
// constructs next to the violations stay silent.
func TestFixtureViolations(t *testing.T) {
	pkgs, fset, mod := loadOnce(t)
	var bad *pkgInfo
	for _, pi := range pkgs {
		if pi.path == fixturePath {
			bad = pi
		}
	}
	if bad == nil {
		t.Fatal("fixture package not loaded")
	}

	cfg := defaultConfig(mod)
	cfg.numeric[fixturePath] = true
	cfg.workers[fixturePath] = true
	cfg.hotpath[fixturePath] = true

	findings := analyzePkg(fset, bad, cfg)
	got := map[string]int{}
	for _, f := range findings {
		got[f.rule]++
		if !strings.Contains(f.pos.Filename, "badpkg") {
			t.Errorf("finding outside the fixture: %s", f)
		}
	}
	want := map[string]int{
		"pattern-mutation": 2,
		"naked-panic":      1,
		"float-equality":   1,
		"lock-discipline":  1,
		"worker-timing":    1,
		"worker-exit":      2,
		"hot-alloc":        4,
		"spin-loop":        2,
	}
	for rule, n := range want {
		if got[rule] != n {
			t.Errorf("rule %s: got %d findings, want %d", rule, got[rule], n)
		}
	}
	for rule, n := range got {
		if want[rule] == 0 {
			t.Errorf("unexpected rule %s fired %d time(s)", rule, n)
		}
	}

	// The `want` comments in the fixture pin the exact lines.
	wantLines := map[int]string{}
	for _, f := range findings {
		wantLines[f.pos.Line] = f.rule
	}
	data := readFixture(t)
	for i, line := range strings.Split(data, "\n") {
		lineNo := i + 1
		if idx := strings.Index(line, "// want "); idx >= 0 {
			rule := strings.TrimSpace(line[idx+len("// want "):])
			if wantLines[lineNo] != rule {
				t.Errorf("line %d: want rule %s, got %q", lineNo, rule, wantLines[lineNo])
			}
			delete(wantLines, lineNo)
		}
	}
	for line, rule := range wantLines {
		t.Errorf("finding %s at line %d has no `// want` marker", rule, line)
	}
}

// TestHotAllocWorkerScope pins the hot-alloc scoping: when the fixture
// is a workers package but NOT a hot-path package, only the goroutine-
// body allocations fire — the top-level make is legal setup code. The
// whole-file variant is covered by TestFixtureViolations, and the
// precedence (hotpath subsumes the goroutine scan, no double reports)
// by its exact per-rule counts.
func TestHotAllocWorkerScope(t *testing.T) {
	pkgs, fset, mod := loadOnce(t)
	var bad *pkgInfo
	for _, pi := range pkgs {
		if pi.path == fixturePath {
			bad = pi
		}
	}
	if bad == nil {
		t.Fatal("fixture package not loaded")
	}

	cfg := defaultConfig(mod)
	cfg.workers[fixturePath] = true // goroutine-body scan only

	var hot []finding
	for _, f := range analyzePkg(fset, bad, cfg) {
		if f.rule == "hot-alloc" {
			hot = append(hot, f)
		}
	}
	if len(hot) != 2 {
		t.Fatalf("worker-scoped hot-alloc: got %d findings, want 2 (goroutine body only):\n%v", len(hot), hot)
	}

	// The two findings must be the goroutine-body make and append ("local"
	// lines), not the top-level make ("buf") and not the sched-closure
	// make ("scratch"): locate the lines from the fixture source.
	goroutineLines := fixtureLines(t, "local")
	for _, f := range hot {
		if !goroutineLines[f.pos.Line] {
			t.Errorf("finding at unexpected line %d (only goroutine-body allocations may fire under worker scoping): %s", f.pos.Line, f)
		}
	}
}

// TestHotAllocSchedClosureScope pins the sched-client scoping: with the
// fixture scoped only as a sched client, exactly the allocation inside
// the closure passed to sched.ExecuteLevels fires — the top-level make
// and the goroutine-body allocations are out of that rule's sight.
func TestHotAllocSchedClosureScope(t *testing.T) {
	pkgs, fset, mod := loadOnce(t)
	var bad *pkgInfo
	for _, pi := range pkgs {
		if pi.path == fixturePath {
			bad = pi
		}
	}
	if bad == nil {
		t.Fatal("fixture package not loaded")
	}

	cfg := defaultConfig(mod)
	cfg.schedClients[fixturePath] = true // sched-closure scan only

	var hot []finding
	for _, f := range analyzePkg(fset, bad, cfg) {
		if f.rule == "hot-alloc" {
			hot = append(hot, f)
		}
	}
	if len(hot) != 1 {
		t.Fatalf("sched-client hot-alloc: got %d findings, want 1 (the sched worker body only):\n%v", len(hot), hot)
	}
	schedLines := fixtureLines(t, "scratch")
	if !schedLines[hot[0].pos.Line] {
		t.Errorf("finding at unexpected line %d: %s", hot[0].pos.Line, hot[0])
	}
}

// fixtureLines returns the line numbers of the fixture's hot-alloc
// `want` markers whose line contains the given substring.
func fixtureLines(t *testing.T, substr string) map[int]bool {
	t.Helper()
	lines := map[int]bool{}
	for i, line := range strings.Split(readFixture(t), "\n") {
		if strings.Contains(line, "// want hot-alloc") && strings.Contains(line, substr) {
			lines[i+1] = true
		}
	}
	if len(lines) == 0 {
		t.Fatalf("no hot-alloc want markers containing %q in the fixture", substr)
	}
	return lines
}

// TestExitNonZeroOnViolations runs the built checker against a
// throwaway module with a violation and pins the command-line contract:
// findings on stdout, exit status 1.
func TestExitNonZeroOnViolations(t *testing.T) {
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "lucheck")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building lucheck: %v\n%s", err, out)
	}

	mod := filepath.Join(tmp, "mod")
	pkg := filepath.Join(mod, "internal", "oops")
	if err := os.MkdirAll(pkg, 0o755); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		filepath.Join(mod, "go.mod"): "module fixmod\n\ngo 1.22\n",
		filepath.Join(pkg, "oops.go"): "package oops\n\n" +
			"func Boom() { panic(\"no prefix here\") }\n",
	}
	for path, content := range files {
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	cmd := exec.Command(bin, "./...")
	cmd.Dir = mod
	out, err := cmd.CombinedOutput()
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) {
		t.Fatalf("want exit error, got %v\n%s", err, out)
	}
	if code := exitErr.ExitCode(); code != 1 {
		t.Fatalf("exit code = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(string(out), "naked-panic") {
		t.Fatalf("output does not name the violated rule:\n%s", out)
	}

	// Fixing the violation flips the exit status to 0.
	fixed := "package oops\n\nfunc Boom() { panic(\"oops: now prefixed\") }\n"
	if err := os.WriteFile(filepath.Join(pkg, "oops.go"), []byte(fixed), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd = exec.Command(bin, "./...")
	cmd.Dir = mod
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("clean module: %v\n%s", err, out)
	}
}

func readFixture(t *testing.T) string {
	t.Helper()
	b, err := filepath.Glob("testdata/src/badpkg/*.go")
	if err != nil || len(b) != 1 {
		t.Fatalf("fixture glob: %v (%d files)", err, len(b))
	}
	data, err := os.ReadFile(b[0])
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestRequestCtxFixture pins the request-ctx rule on its fixture: the
// context.Background/TODO calls and the detached goroutines fire
// exactly on their `want` lines, the cancellation-threading goroutines
// stay silent, and the suppression path works. The fixture's virtual
// path is scoped into the service set for the run; the real scoping
// (internal/server) is covered by TestRepoClean keeping the repo
// itself at zero findings.
func TestRequestCtxFixture(t *testing.T) {
	pkgs, fset, mod := loadOnce(t)
	const ctxPath = "repro/fixture/ctxfix"
	var pi *pkgInfo
	for _, p := range pkgs {
		if p.path == ctxPath {
			pi = p
		}
	}
	if pi == nil {
		t.Fatal("ctxfix fixture not loaded")
	}

	cfg := defaultConfig(mod)
	cfg.service[ctxPath] = true

	var got []finding
	for _, f := range analyzePkg(fset, pi, cfg) {
		if f.rule != "request-ctx" {
			t.Errorf("unexpected rule in ctxfix: %s", f)
			continue
		}
		got = append(got, f)
	}

	data, err := os.ReadFile(filepath.Join("testdata", "src", "ctxfix", "ctxfix.go"))
	if err != nil {
		t.Fatal(err)
	}
	wantLines := map[int]bool{}
	for i, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, "// want request-ctx") {
			wantLines[i+1] = true
		}
	}
	if len(wantLines) != 4 {
		t.Fatalf("fixture has %d want markers, expected 4", len(wantLines))
	}
	gotLines := map[int]bool{}
	for _, f := range got {
		gotLines[f.pos.Line] = true
	}
	for line := range wantLines {
		if !gotLines[line] {
			t.Errorf("no request-ctx finding on fixture line %d", line)
		}
	}
	for line := range gotLines {
		if !wantLines[line] {
			t.Errorf("unexpected request-ctx finding on fixture line %d", line)
		}
	}

	// Scoped out, the rule must not fire at all.
	clean := defaultConfig(mod)
	for _, f := range analyzePkg(fset, pi, clean) {
		if f.rule == "request-ctx" {
			t.Errorf("request-ctx fired outside the service scope: %s", f)
		}
	}
}

// TestParallelAnalyzeWorkerFixture pins the workers-set extension to
// the parallel-analyze pools: a package shaped like the subtree fan-out
// of internal/symbolic / internal/core, but with function-literal
// goroutine bodies that allocate per task and write shared state
// outside the lock, must produce exactly the hot-alloc and
// lock-discipline findings on its `want` lines — and nothing else (the
// locked error publication is the sanctioned pattern). The real
// scoping of internal/symbolic and internal/core is covered by
// TestRepoClean keeping the repository itself at zero findings.
func TestParallelAnalyzeWorkerFixture(t *testing.T) {
	pkgs, fset, mod := loadOnce(t)
	const workPath = "repro/fixture/workfix"
	var pi *pkgInfo
	for _, p := range pkgs {
		if p.path == workPath {
			pi = p
		}
	}
	if pi == nil {
		t.Fatal("workfix fixture not loaded")
	}

	cfg := defaultConfig(mod)
	if !cfg.workers[mod+"/internal/symbolic"] || !cfg.workers[mod+"/internal/core"] {
		t.Fatal("internal/symbolic and internal/core must be in the workers set")
	}
	cfg.workers[workPath] = true

	gotLines := map[int]string{}
	for _, f := range analyzePkg(fset, pi, cfg) {
		if f.rule != "hot-alloc" && f.rule != "lock-discipline" {
			t.Errorf("unexpected rule in workfix: %s", f)
			continue
		}
		gotLines[f.pos.Line] = f.rule
	}

	data, err := os.ReadFile(filepath.Join("testdata", "src", "workfix", "workfix.go"))
	if err != nil {
		t.Fatal(err)
	}
	markers := 0
	for i, line := range strings.Split(string(data), "\n") {
		idx := strings.Index(line, "// want ")
		if idx < 0 {
			continue
		}
		markers++
		rule := strings.TrimSpace(line[idx+len("// want "):])
		if gotLines[i+1] != rule {
			t.Errorf("line %d: want rule %s, got %q", i+1, rule, gotLines[i+1])
		}
		delete(gotLines, i+1)
	}
	if markers != 3 {
		t.Fatalf("fixture has %d want markers, expected 3", markers)
	}
	for line, rule := range gotLines {
		t.Errorf("finding %s at line %d has no `want` marker", rule, line)
	}
}
