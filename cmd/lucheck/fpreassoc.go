package main

// The fp-reassoc rule: floating-point accumulation in the numeric
// packages must run in the pinned serial order — ascending k — because
// the bitwise-determinism contract is exactly "the parallel execution
// performs the same additions in the same order as the serial sweep".
// Four accumulation shapes break that order statically:
//
//   - descending: a compound float accumulation (`s += …`, `s -= …`,
//     `s = s + …`) into a variable declared OUTSIDE a loop that steps
//     its variable downward. The upper-triangular solve kernels are
//     pinned descending by design and are whitelisted per file.
//   - worker-order: a compound float accumulation into a variable
//     declared outside a goroutine body or a sched.Execute* closure.
//     Even under a lock the additions happen in task-completion order,
//     which varies with the worker count — a lock makes it race-free,
//     not deterministic.
//   - permuted gather: a scalar accumulation whose summand reads
//     through an index indirection (x[idx[…]]). The gather order then
//     depends on the contents of the index vector, which no loop
//     direction pins.
//   - map-order: a compound float accumulation inside a map-range
//     body; iteration order is randomized per run.

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// fpReassoc runs the rule over the fp-scoped packages.
func (a *analysis) fpReassoc(g *callGraph) {
	for _, n := range g.nodes {
		if !a.cfg.fpScope[n.pi.path] {
			continue
		}
		file := a.fset.Position(n.pos()).Filename
		if a.fpExempt[file] {
			continue // relaxed-mode kernel file: whole fp scan waived
		}
		whitelisted := a.cfg.fpWhitelist[filepath.Base(file)]
		s := &fpScan{a: a, n: n, pi: n.pi, whitelisted: whitelisted}
		s.walk(n.body, nil)
	}
	// Worker-order accumulation: the bodies of worker closures (their
	// own nodes) accumulate into captured variables.
	for _, n := range g.nodes {
		if !a.cfg.fpScope[n.pi.path] || !n.workerRoot || n.lit == nil || n.goLit {
			continue // go-spawned literals were checked during the walk
		}
		if a.fpExempt[a.fset.Position(n.pos()).Filename] {
			continue
		}
		s := &fpScan{a: a, n: n, pi: n.pi}
		s.workerAccum(n.lit)
	}
}

type fpScan struct {
	a           *analysis
	n           *cgNode
	pi          *pkgInfo
	whitelisted bool
}

// loopCtx describes one enclosing loop during the walk.
type loopCtx struct {
	node       ast.Node
	descending bool
	mapRange   bool
}

// walk traverses statements tracking the loop-context stack. Nested
// function literals are skipped for the loop checks (they are their own
// nodes) but goroutine literals get the worker-order check here, where
// the capture environment is visible.
func (s *fpScan) walk(node ast.Node, loops []*loopCtx) {
	ast.Inspect(node, func(nd ast.Node) bool {
		switch v := nd.(type) {
		case *ast.FuncLit:
			if v == s.n.lit || nd == node {
				return true
			}
			return false
		case *ast.GoStmt:
			if fl, ok := v.Call.Fun.(*ast.FuncLit); ok {
				s.workerAccum(fl)
			}
			return true
		case *ast.ForStmt:
			ctx := &loopCtx{node: v, descending: descendingFor(v)}
			s.walkLoopBody(v.Body, append(loops, ctx))
			if v.Init != nil {
				s.walk(v.Init, loops)
			}
			return false
		case *ast.RangeStmt:
			ctx := &loopCtx{node: v}
			if tv, ok := s.pi.info.Types[v.X]; ok {
				_, ctx.mapRange = tv.Type.Underlying().(*types.Map)
			}
			s.walkLoopBody(v.Body, append(loops, ctx))
			return false
		case *ast.AssignStmt:
			s.checkAccum(v, loops)
			return true
		}
		return true
	})
}

func (s *fpScan) walkLoopBody(body *ast.BlockStmt, loops []*loopCtx) {
	for _, st := range body.List {
		s.walk(st, loops)
	}
}

// workerAccum flags float accumulation into captured variables inside
// a worker body: the additions land in task-completion order.
func (s *fpScan) workerAccum(fl *ast.FuncLit) {
	ast.Inspect(fl.Body, func(nd ast.Node) bool {
		if inner, ok := nd.(*ast.FuncLit); ok && inner != fl {
			return false
		}
		as, ok := nd.(*ast.AssignStmt)
		if !ok {
			return true
		}
		target, ok := s.floatAccumTarget(as)
		if !ok {
			return true
		}
		obj := s.lvalueObj(target)
		if obj == nil {
			return true
		}
		if obj.Pos() < fl.Pos() || obj.Pos() >= fl.End() {
			s.a.report(as.Pos(), "fp-reassoc",
				"float accumulation into captured %q inside a worker body sums in task-completion order; accumulate locally and combine in the pinned order", obj.Name())
		}
		return true
	})
}

// checkAccum applies the descending / permuted-gather / map-order
// checks to one assignment.
func (s *fpScan) checkAccum(as *ast.AssignStmt, loops []*loopCtx) {
	target, ok := s.floatAccumTarget(as)
	if !ok {
		return
	}
	obj := s.lvalueObj(target)

	// Permuted gather: the summand reads x[idx[...]] into a scalar.
	if _, isIdent := ast.Unparen(target).(*ast.Ident); isIdent && len(as.Rhs) == 1 {
		if s.hasIndirectGather(as.Rhs[0]) {
			s.a.report(as.Pos(), "fp-reassoc",
				"float accumulation gathers through an index indirection; the summation order follows the index vector, not the pinned ascending sweep")
			return
		}
	}

	if obj == nil {
		return
	}
	for i := len(loops) - 1; i >= 0; i-- {
		ctx := loops[i]
		declaredOutside := obj.Pos() < ctx.node.Pos() || obj.Pos() >= ctx.node.End()
		if !declaredOutside {
			// The accumulator resets inside this loop; outer loop
			// directions cannot reassociate its partial sums.
			return
		}
		if ctx.mapRange {
			s.a.report(as.Pos(), "fp-reassoc",
				"float accumulation inside a map-range body sums in randomized map order")
			return
		}
		if ctx.descending && !s.whitelisted {
			s.a.report(as.Pos(), "fp-reassoc",
				"float accumulation in a descending loop reassociates against the pinned ascending-k order")
			return
		}
	}
}

// floatAccumTarget reports the accumulation target of `t += e`,
// `t -= e` or `t = t ± e` when t has floating-point type.
func (s *fpScan) floatAccumTarget(as *ast.AssignStmt) (ast.Expr, bool) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, false
	}
	lhs := as.Lhs[0]
	tv, ok := s.pi.info.Types[lhs]
	if !ok || !isFloat(tv.Type) {
		return nil, false
	}
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		return lhs, true
	case token.ASSIGN:
		// t = t + e / t = e + t / t = t - e
		be, ok := ast.Unparen(as.Rhs[0]).(*ast.BinaryExpr)
		if !ok || (be.Op != token.ADD && be.Op != token.SUB) {
			return nil, false
		}
		if sameLvalue(lhs, be.X) || (be.Op == token.ADD && sameLvalue(lhs, be.Y)) {
			return lhs, true
		}
	}
	return nil, false
}

// sameLvalue is a syntactic comparison good enough for `s = s + x`.
func sameLvalue(a, b ast.Expr) bool {
	ai, aok := ast.Unparen(a).(*ast.Ident)
	bi, bok := ast.Unparen(b).(*ast.Ident)
	return aok && bok && ai.Name == bi.Name
}

// hasIndirectGather reports a read of the shape x[idx[...]] where idx
// is an integer slice: an index indirection in the summand.
func (s *fpScan) hasIndirectGather(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(nd ast.Node) bool {
		if found {
			return false
		}
		ix, ok := nd.(*ast.IndexExpr)
		if !ok {
			return true
		}
		inner, ok := ast.Unparen(ix.Index).(*ast.IndexExpr)
		if !ok {
			return true
		}
		if tv, ok := s.pi.info.Types[inner.X]; ok {
			if sl, ok := tv.Type.Underlying().(*types.Slice); ok {
				if b, ok := sl.Elem().Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// lvalueObj drills to the base identifier's object.
func (s *fpScan) lvalueObj(e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.SelectorExpr:
			e = v.X
		case *ast.Ident:
			if obj := s.pi.info.Uses[v]; obj != nil {
				return obj
			}
			return s.pi.info.Defs[v]
		default:
			return nil
		}
	}
}

// descendingFor reports whether the for loop steps its variable down
// (i--, i -= 1).
func descendingFor(v *ast.ForStmt) bool {
	switch post := v.Post.(type) {
	case *ast.IncDecStmt:
		return post.Tok == token.DEC
	case *ast.AssignStmt:
		return post.Tok == token.SUB_ASSIGN
	}
	return false
}
