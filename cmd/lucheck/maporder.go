package main

// The map-order rule: in the determinism-contract packages, a value
// whose ORDER (or value) derives from a nondeterministic source must
// not reach an ordered sink without an intervening deterministic sort.
//
// Sources:
//   - ranging over a map (iteration order is randomized),
//   - ranging over a slice that is itself map-ordered (taint
//     propagates through the elements),
//   - a select statement with two or more communication cases (the
//     runtime picks a ready case pseudo-randomly),
//   - the wall clock (time.Now / time.Since) and math/rand.
//
// Sinks (all scoped to the contract packages):
//   - stores into ordered structure fields (Order, Off, Levels, Tasks,
//     Succ, Queue, Prio, Val) — the schedule and factor storage whose
//     element order IS the determinism contract,
//   - arguments to functions of the scheduler/taskgraph/trace packages
//     (task queues and trace event streams),
//   - channel sends,
//   - fmt output (report streams must be reproducible),
//   - returns of exported functions (the order escapes the package).
//
// Taint propagates through assignments, appends and — interprocedurally
// — through the results of module functions: a summary pass fixpoints
// over the call graph so a helper that returns map keys taints its
// callers, wherever they live.
//
// A call to a sort function (package sort or slices) on the tainted
// value sanitizes it: uses after the sort position are clean. The
// min/max-reduction idiom (x = v guarded by an if comparing x against
// v) is recognized as order-independent and does not taint.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// taintInfo tracks one tainted object.
type taintInfo struct {
	pos        token.Pos // where the taint arose
	reason     string    // human-readable source description
	sanitized  token.Pos // position of the sanitizing sort, or NoPos
	fromSource string    // rule-internal source class
}

// activeAt reports whether the taint is live at use position p.
func (t *taintInfo) activeAt(p token.Pos) bool {
	if p < t.pos {
		return false
	}
	return t.sanitized == token.NoPos || p < t.sanitized
}

// moSummaries is the interprocedural result-taint table: for a named
// function, which results carry nondeterministic order.
type moSummaries map[*types.Func][]string // reason per result ("" = clean)

// mapOrder runs the rule over every contract-package function.
func (a *analysis) mapOrder(g *callGraph) {
	sums := moSummaries{}
	// Fixpoint over result summaries (taint through helper returns),
	// then one reporting pass. The module call depth is small; cap the
	// iterations defensively.
	for iter := 0; iter < 8; iter++ {
		changed := false
		for _, n := range g.nodes {
			if !a.cfg.contract[n.pi.path] || n.obj == nil {
				continue
			}
			s := a.newMoScan(n, sums, false)
			s.run()
			if updateSummary(sums, n.obj, s.resultTaint) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, n := range g.nodes {
		if !a.cfg.contract[n.pi.path] {
			continue
		}
		s := a.newMoScan(n, sums, true)
		s.run()
	}
}

func updateSummary(sums moSummaries, f *types.Func, taint []string) bool {
	old := sums[f]
	if len(old) != len(taint) {
		sums[f] = taint
		return true
	}
	for i := range taint {
		if old[i] != taint[i] {
			sums[f] = taint
			return true
		}
	}
	return false
}

// moScan is the per-function walk.
type moScan struct {
	a      *analysis
	n      *cgNode
	pi     *pkgInfo
	sums   moSummaries
	report bool

	tainted     map[types.Object]*taintInfo
	resultTaint []string // per result index, "" when clean

	// regions is the stack of enclosing nondeterministic-order regions
	// (map ranges, tainted-slice ranges, multi-case selects).
	regions []*moRegion
	// ifConds is the stack of enclosing if conditions, for the
	// reduction idiom.
	ifConds []ast.Expr
}

type moRegion struct {
	node   ast.Node // the RangeStmt or SelectStmt
	reason string
	// keyObj/valObj are the range variables; stores keyed by them are
	// element-addressed and therefore order-independent.
	keyObj, valObj types.Object
}

func (a *analysis) newMoScan(n *cgNode, sums moSummaries, rep bool) *moScan {
	s := &moScan{a: a, n: n, pi: n.pi, sums: sums, report: rep,
		tainted: map[types.Object]*taintInfo{}}
	if n.obj != nil {
		if sig, ok := n.obj.Type().(*types.Signature); ok {
			s.resultTaint = make([]string, sig.Results().Len())
		}
	}
	return s
}

func (s *moScan) run() {
	s.block(s.n.body.List)
}

func (s *moScan) block(stmts []ast.Stmt) {
	for _, st := range stmts {
		s.stmt(st)
	}
}

func (s *moScan) inRegion() *moRegion {
	if len(s.regions) == 0 {
		return nil
	}
	return s.regions[len(s.regions)-1]
}

func (s *moScan) stmt(st ast.Stmt) {
	switch v := st.(type) {
	case *ast.AssignStmt:
		s.assign(v)
	case *ast.RangeStmt:
		s.rangeStmt(v)
	case *ast.SelectStmt:
		s.selectStmt(v)
	case *ast.ExprStmt:
		s.expr(v.X)
	case *ast.IfStmt:
		if v.Init != nil {
			s.stmt(v.Init)
		}
		s.expr(v.Cond)
		s.ifConds = append(s.ifConds, v.Cond)
		s.block(v.Body.List)
		s.ifConds = s.ifConds[:len(s.ifConds)-1]
		switch e := v.Else.(type) {
		case *ast.BlockStmt:
			s.block(e.List)
		case ast.Stmt:
			s.stmt(e)
		}
	case *ast.ForStmt:
		if v.Init != nil {
			s.stmt(v.Init)
		}
		if v.Cond != nil {
			s.expr(v.Cond)
		}
		s.block(v.Body.List)
		if v.Post != nil {
			s.stmt(v.Post)
		}
	case *ast.BlockStmt:
		s.block(v.List)
	case *ast.SwitchStmt:
		if v.Init != nil {
			s.stmt(v.Init)
		}
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.block(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.block(cc.Body)
			}
		}
	case *ast.ReturnStmt:
		s.returnStmt(v)
	case *ast.SendStmt:
		if t := s.exprTaint(v.Value); t != nil && t.activeAt(v.Value.Pos()) {
			s.sink(v.Value.Pos(), t, "channel send")
		} else if r := s.inRegion(); r != nil {
			s.sinkRegion(v.Value.Pos(), r, "channel send")
		}
		s.expr(v.Value)
	case *ast.IncDecStmt, *ast.DeclStmt, *ast.BranchStmt:
		// Counters and declarations do not move order around; var decls
		// with initializers are handled below.
		if ds, ok := st.(*ast.DeclStmt); ok {
			s.declStmt(ds)
		}
	case *ast.DeferStmt:
		s.expr(v.Call)
	case *ast.GoStmt:
		s.expr(v.Call)
	case *ast.LabeledStmt:
		s.stmt(v.Stmt)
	}
}

// declStmt taints variables initialized from tainted expressions.
func (s *moScan) declStmt(ds *ast.DeclStmt) {
	gd, ok := ds.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, sp := range gd.Specs {
		vs, ok := sp.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			if i < len(vs.Values) {
				if t := s.valueTaint(vs.Values[i]); t != nil {
					s.taintIdent(name, t.reason, vs.Values[i].Pos())
				}
			}
		}
	}
}

// rangeStmt handles the map-range and tainted-slice-range sources.
func (s *moScan) rangeStmt(v *ast.RangeStmt) {
	s.expr(v.X)
	tv, ok := s.pi.info.Types[v.X]
	region := (*moRegion)(nil)
	if ok {
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			region = &moRegion{node: v, reason: "map iteration order"}
			// Both key and value are picked in randomized order.
			region.keyObj = s.defObj(v.Key)
			region.valObj = s.defObj(v.Value)
			if region.keyObj != nil {
				s.taintObj(region.keyObj, "map iteration order", v.Pos())
			}
			if region.valObj != nil {
				s.taintObj(region.valObj, "map iteration order", v.Pos())
			}
		}
	}
	if region == nil {
		if t := s.exprTaint(v.X); t != nil && t.activeAt(v.X.Pos()) {
			region = &moRegion{node: v, reason: t.reason}
			region.keyObj = s.defObj(v.Key) // positional index: clean
			region.valObj = s.defObj(v.Value)
			if region.valObj != nil {
				s.taintObj(region.valObj, t.reason, v.Pos())
			}
		}
	}
	if region != nil {
		s.regions = append(s.regions, region)
		s.block(v.Body.List)
		s.regions = s.regions[:len(s.regions)-1]
		return
	}
	s.block(v.Body.List)
}

// selectStmt treats a select with two or more communication cases as a
// nondeterministic region: the runtime chooses among ready cases.
func (s *moScan) selectStmt(v *ast.SelectStmt) {
	comms := 0
	for _, c := range v.Body.List {
		if _, ok := c.(*ast.CommClause); ok {
			comms++
		}
	}
	region := (*moRegion)(nil)
	if comms >= 2 {
		region = &moRegion{node: v, reason: "select case choice"}
		s.regions = append(s.regions, region)
	}
	for _, c := range v.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm != nil {
			s.stmt(cc.Comm)
		}
		s.block(cc.Body)
	}
	if region != nil {
		s.regions = s.regions[:len(s.regions)-1]
	}
}

// assign is where most taint is created, propagated and sunk.
func (s *moScan) assign(v *ast.AssignStmt) {
	for _, rhs := range v.Rhs {
		s.expr(rhs)
	}
	// Multi-value call: x, y := f() with a summary-tainted result.
	if len(v.Lhs) > 1 && len(v.Rhs) == 1 {
		if call, ok := ast.Unparen(v.Rhs[0]).(*ast.CallExpr); ok {
			if reasons := s.callResultTaint(call); reasons != nil {
				for i, lhs := range v.Lhs {
					if i < len(reasons) && reasons[i] != "" {
						s.taintLHS(lhs, reasons[i], call.Pos())
					}
				}
				return
			}
		}
	}
	if len(v.Lhs) != len(v.Rhs) {
		return
	}
	for i := range v.Lhs {
		s.assignOne(v, v.Lhs[i], v.Rhs[i])
	}
}

func (s *moScan) assignOne(v *ast.AssignStmt, lhs, rhs ast.Expr) {
	rhsTaint := s.valueTaint(rhs)

	// Sink check first: a tainted value stored into an ordered field.
	if rhsTaint != nil && rhsTaint.activeAt(rhs.Pos()) {
		if field := s.sinkField(lhs); field != "" {
			s.sink(lhs.Pos(), rhsTaint, "store into ordered field ."+field)
			return
		}
	}

	// Ordered-append inside a nondeterministic region: dst collects
	// elements in region order.
	if r := s.inRegion(); r != nil {
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isBuiltin(s.pi, call, "append") {
			if obj := s.baseObj(lhs); obj != nil && s.declaredOutside(obj, r.node) {
				if field := s.sinkField(lhs); field != "" {
					s.sink(lhs.Pos(), &taintInfo{pos: v.Pos(), reason: r.reason}, "append in "+r.reason+" order into ordered field ."+field)
					return
				}
				s.taintObj(obj, r.reason, v.Pos())
				return
			}
			// Appending into a sink field directly.
			if field := s.sinkField(firstArg(call)); field != "" {
				s.sink(call.Pos(), &taintInfo{pos: v.Pos(), reason: r.reason}, "append in "+r.reason+" order into ordered field ."+field)
				return
			}
		}
		// Indexed store in region order: dst[i] = ... where the index is
		// NOT derived from the range variables. Element-addressed stores
		// (hist[k] += v with k the range key) land each value at its own
		// key and are order-independent: no taint either way.
		if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if obj := s.baseObj(ix.X); obj != nil && s.declaredOutside(obj, r.node) {
				if !s.mentionsRegionVar(ix.Index, r) {
					s.taintObj(obj, r.reason, v.Pos())
				}
				return
			}
		}
		// Plain store of a region variable (or derived value) to an
		// outer variable: last-writer-wins in region order.
		if rhsTaint != nil && rhsTaint.activeAt(rhs.Pos()) {
			if obj := s.baseObj(lhs); obj != nil && s.declaredOutside(obj, r.node) && !s.isReduction(lhs) {
				s.taintObj(obj, rhsTaint.reason, v.Pos())
			}
			return
		}
	}

	// Plain propagation outside regions.
	if rhsTaint != nil && rhsTaint.activeAt(rhs.Pos()) && !s.isReduction(lhs) {
		s.taintLHS(lhs, rhsTaint.reason, rhs.Pos())
	}
}

func firstArg(call *ast.CallExpr) ast.Expr {
	if len(call.Args) == 0 {
		return nil
	}
	return call.Args[0]
}

// isReduction reports whether the innermost enclosing if condition
// compares the assigned variable (min/max reduction idiom): the final
// value is order-independent.
func (s *moScan) isReduction(lhs ast.Expr) bool {
	if len(s.ifConds) == 0 {
		return false
	}
	obj := s.baseObj(lhs)
	if obj == nil {
		return false
	}
	cond := s.ifConds[len(s.ifConds)-1]
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch be.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return false
	}
	return s.mentionsObj(be.X, obj) || s.mentionsObj(be.Y, obj)
}

// returnStmt reports exported escapes and feeds the summary.
func (s *moScan) returnStmt(v *ast.ReturnStmt) {
	for i, r := range v.Results {
		s.expr(r)
		t := s.valueTaint(r)
		if t == nil || !t.activeAt(r.Pos()) {
			continue
		}
		if s.resultTaint != nil && i < len(s.resultTaint) {
			s.resultTaint[i] = t.reason
		}
		if s.n.obj != nil && s.n.obj.Exported() {
			s.sink(r.Pos(), t, "return from exported function "+s.n.obj.Name())
		}
	}
}

// expr walks an expression for sources and call sinks.
func (s *moScan) expr(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // separate node
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		s.checkCall(call)
		return true
	})
}

// checkCall handles sanitizers and call-argument sinks.
func (s *moScan) checkCall(call *ast.CallExpr) {
	// Sanitizer: sort/slices functions clear the taint of their first
	// argument from this position on.
	if pkg := s.calleePkg(call); pkg == "sort" || pkg == "slices" {
		if len(call.Args) > 0 {
			if obj := s.baseObj(call.Args[0]); obj != nil {
				if t := s.tainted[obj]; t != nil && t.sanitized == token.NoPos {
					t.sanitized = call.Pos()
				}
			}
		}
		return
	}
	// Sink: tainted argument handed to the scheduler/taskgraph/trace
	// packages, or to fmt output.
	pkgPath := s.calleePkgPath(call)
	isSink := s.a.cfg.sinkPkgs[pkgPath]
	isFmt := pkgPath == "fmt" && strings.Contains(calleeName(call), "rint")
	if !isSink && !isFmt {
		return
	}
	for _, arg := range call.Args {
		if t := s.exprTaint(arg); t != nil && t.activeAt(arg.Pos()) {
			what := "argument to " + pkgLabel(pkgPath) + "." + calleeName(call)
			s.sink(arg.Pos(), t, what)
			return
		}
	}
}

func pkgLabel(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

func calleeName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return "?"
}

// valueTaint computes the taint of an expression used as a value:
// direct sources (clock, rand), summary-tainted call results, or any
// mention of a tainted object.
func (s *moScan) valueTaint(e ast.Expr) *taintInfo {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		if src := s.nondetSource(call); src != "" {
			return &taintInfo{pos: call.Pos(), reason: src, sanitized: token.NoPos}
		}
		if reasons := s.callResultTaint(call); len(reasons) == 1 && reasons[0] != "" {
			return &taintInfo{pos: call.Pos(), reason: reasons[0], sanitized: token.NoPos}
		}
		// append(dst, tainted...) keeps dst's and the elements' taint.
		if isBuiltin(s.pi, call, "append") {
			for _, a := range call.Args {
				if t := s.exprTaint(a); t != nil {
					return t
				}
			}
		}
		// Order-insensitive queries of tainted collections stay clean.
		if isBuiltin(s.pi, call, "len") || isBuiltin(s.pi, call, "cap") {
			return nil
		}
		// Conversions and other calls pass their operands' taint through
		// (float64(t.UnixNano()) is as clock-ordered as t itself).
		return s.exprTaint(e)
	}
	return s.exprTaint(e)
}

// exprTaint reports a tainted object — or a direct nondeterministic
// source call — mentioned anywhere in e.
func (s *moScan) exprTaint(e ast.Expr) *taintInfo {
	if e == nil {
		return nil
	}
	var found *taintInfo
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if src := s.nondetSource(call); src != "" {
				found = &taintInfo{pos: call.Pos(), reason: src, sanitized: token.NoPos}
				return false
			}
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := s.useObj(id); obj != nil {
				if t := s.tainted[obj]; t != nil && t.activeAt(id.Pos()) {
					found = t
				}
			}
		}
		return true
	})
	return found
}

func (s *moScan) mentionsObj(e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && s.useObj(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

func (s *moScan) mentionsRegionVar(e ast.Expr, r *moRegion) bool {
	if r.keyObj != nil && s.mentionsObj(e, r.keyObj) {
		return true
	}
	if r.valObj != nil && s.mentionsObj(e, r.valObj) {
		return true
	}
	return false
}

// nondetSource classifies direct nondeterministic value sources.
func (s *moScan) nondetSource(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj := s.pi.info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	switch obj.Pkg().Path() {
	case "time":
		if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" {
			return "wall-clock read (time." + sel.Sel.Name + ")"
		}
	case "math/rand", "math/rand/v2":
		return "math/rand value"
	}
	return ""
}

// callResultTaint resolves a direct call to a module function and
// returns the per-result taint reasons from the summary table.
func (s *moScan) callResultTaint(call *ast.CallExpr) []string {
	var obj types.Object
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = s.pi.info.Uses[f]
	case *ast.SelectorExpr:
		obj = s.pi.info.Uses[f.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return s.sums[fn]
}

// sinkField returns the ordered-field name when lhs stores into one of
// the protected structure fields (possibly through an index).
func (s *moScan) sinkField(e ast.Expr) string {
	if e == nil {
		return ""
	}
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = v.X
		case *ast.SelectorExpr:
			if sel := s.pi.info.Selections[v]; sel != nil && sel.Kind() == types.FieldVal {
				if s.a.cfg.sinkFields[v.Sel.Name] {
					return v.Sel.Name
				}
			}
			return ""
		default:
			return ""
		}
	}
}

// sink files a finding (reporting pass only).
func (s *moScan) sink(pos token.Pos, t *taintInfo, what string) {
	if !s.report {
		return
	}
	s.a.report(pos, "map-order",
		"%s receives a value ordered by %s without a deterministic sort in between", what, t.reason)
}

// sinkRegion files a finding for a region-ordered sink with no
// tracked object (a direct send inside a map range).
func (s *moScan) sinkRegion(pos token.Pos, r *moRegion, what string) {
	if !s.report {
		return
	}
	s.a.report(pos, "map-order",
		"%s inside a %s region publishes elements in nondeterministic order", what, r.reason)
}

// taintLHS taints the base object of an assignment target.
func (s *moScan) taintLHS(lhs ast.Expr, reason string, pos token.Pos) {
	if field := s.sinkField(lhs); field != "" {
		s.sink(lhs.Pos(), &taintInfo{pos: pos, reason: reason, sanitized: token.NoPos},
			"store into ordered field ."+field)
		return
	}
	if obj := s.baseObj(lhs); obj != nil {
		s.taintObj(obj, reason, pos)
	}
}

func (s *moScan) taintIdent(id *ast.Ident, reason string, pos token.Pos) {
	if obj := s.pi.info.Defs[id]; obj != nil {
		s.taintObj(obj, reason, pos)
	}
}

func (s *moScan) taintObj(obj types.Object, reason string, pos token.Pos) {
	if obj == nil {
		return
	}
	if t := s.tainted[obj]; t != nil && t.sanitized == token.NoPos {
		return // keep the earliest live taint
	}
	s.tainted[obj] = &taintInfo{pos: pos, reason: reason, sanitized: token.NoPos}
}

// defObj resolves a range-variable define.
func (s *moScan) defObj(e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := s.pi.info.Defs[id]; obj != nil {
		return obj
	}
	return s.pi.info.Uses[id]
}

func (s *moScan) useObj(id *ast.Ident) types.Object {
	if obj := s.pi.info.Uses[id]; obj != nil {
		return obj
	}
	return s.pi.info.Defs[id]
}

// baseObj drills an lvalue to its base identifier's object.
func (s *moScan) baseObj(e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.SelectorExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.Ident:
			return s.useObj(v)
		default:
			return nil
		}
	}
}

// declaredOutside reports whether obj is declared outside node's span.
func (s *moScan) declaredOutside(obj types.Object, node ast.Node) bool {
	return obj.Pos() < node.Pos() || obj.Pos() >= node.End()
}

// calleePkg returns the package name qualifier of a pkg.F call.
func (s *moScan) calleePkg(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj := s.pi.info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// calleePkgPath returns the import path of the callee's package, also
// resolving plain identifiers (same-package calls).
func (s *moScan) calleePkgPath(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		obj := s.pi.info.Uses[f.Sel]
		if obj != nil && obj.Pkg() != nil {
			return obj.Pkg().Path()
		}
	case *ast.Ident:
		obj := s.pi.info.Uses[f]
		if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil {
			return fn.Pkg().Path()
		}
	}
	return ""
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(pi *pkgInfo, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	obj := pi.info.Uses[id]
	return obj != nil && obj.Parent() == types.Universe
}
