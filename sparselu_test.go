package sparselu

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/matgen"
)

func buildRandom(t *testing.T, n int, density float64, seed int64) *Matrix {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	rowAbs := make([]float64, n)
	type e struct {
		i, j int
		v    float64
	}
	var es []e
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < density {
				v := rng.NormFloat64()
				es = append(es, e{i, j, v})
				rowAbs[i] += math.Abs(v)
			}
		}
	}
	for _, x := range es {
		b.Add(x.i, x.j, x.v)
	}
	for i := 0; i < n; i++ {
		b.Add(i, i, rowAbs[i]+1)
	}
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestQuickstartExample(t *testing.T) {
	b := NewBuilder(3)
	b.Add(0, 0, 4)
	b.Add(0, 1, 1)
	b.Add(1, 0, 2)
	b.Add(1, 1, 5)
	b.Add(1, 2, 1)
	b.Add(2, 1, 3)
	b.Add(2, 2, 6)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	f, err := Factorize(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	rhs := []float64{1, 2, 3}
	x, err := f.Solve(rhs)
	if err != nil {
		t.Fatal(err)
	}
	if r := Residual(m, x, rhs); r > 1e-12 {
		t.Fatalf("residual %g", r)
	}
}

func TestMatrixAccessors(t *testing.T) {
	m := buildRandom(t, 10, 0.3, 1)
	if m.Order() != 10 {
		t.Fatal("Order wrong")
	}
	if m.NNZ() < 10 {
		t.Fatal("NNZ too small")
	}
	x := make([]float64, 10)
	for i := range x {
		x[i] = 1
	}
	y := m.MulVec(x)
	if len(y) != 10 {
		t.Fatal("MulVec length")
	}
	s := m.Scale(2)
	if s.At(0, 0) != 2*m.At(0, 0) {
		t.Fatal("Scale wrong")
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	m := buildRandom(t, 12, 0.25, 2)
	var buf bytes.Buffer
	if err := m.WriteMatrixMarket(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Order() != m.Order() || m2.NNZ() != m.NNZ() {
		t.Fatal("round trip changed the matrix")
	}
}

func TestReadMatrixMarketRejectsRectangular(t *testing.T) {
	src := "%%MatrixMarket matrix coordinate real general\n2 3 1\n1 1 1.0\n"
	if _, err := ReadMatrixMarket(strings.NewReader(src)); err == nil {
		t.Fatal("rectangular matrix accepted")
	}
}

func TestBuilderRejectsRectangular(t *testing.T) {
	b := &Builder{}
	_ = b
	// NewBuilder only builds square matrices; verify Build checks too.
	m := NewBuilder(2)
	m.Add(0, 0, 1)
	m.Add(1, 1, 1)
	if _, err := m.Build(); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeStatsPublic(t *testing.T) {
	m := buildRandom(t, 50, 0.08, 3)
	a, err := Analyze(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.Order != 50 || st.NNZ != m.NNZ() {
		t.Fatalf("stats wrong: %+v", st)
	}
	if st.FillRatio < 1 || st.Supernodes < 1 || st.Tasks < 1 {
		t.Fatalf("stats implausible: %+v", st)
	}
	f, err := a.Factorize(m)
	if err != nil {
		t.Fatal(err)
	}
	rhs := make([]float64, 50)
	for i := range rhs {
		rhs[i] = float64(i + 1)
	}
	x, err := f.Solve(rhs)
	if err != nil {
		t.Fatal(err)
	}
	if r := Residual(m, x, rhs); r > 1e-10 {
		t.Fatalf("residual %g", r)
	}
}

func TestAllOptionCombos(t *testing.T) {
	m := buildRandom(t, 40, 0.1, 4)
	rhs := make([]float64, 40)
	for i := range rhs {
		rhs[i] = 1
	}
	for _, ord := range []Ordering{MinDegree, NaturalOrder, RCM} {
		for _, post := range []bool{true, false} {
			for _, tg := range []TaskGraph{EForestGraph, SStarGraph} {
				for _, w := range []int{1, 4} {
					opts := &Options{Ordering: ord, Postorder: post, TaskGraph: tg, Workers: w, MaxSupernode: 8, AmalgamationFill: 0.3}
					f, err := Factorize(m, opts)
					if err != nil {
						t.Fatalf("%v/%v/%v/%d: %v", ord, post, tg, w, err)
					}
					x, err := f.Solve(rhs)
					if err != nil {
						t.Fatal(err)
					}
					if r := Residual(m, x, rhs); r > 1e-10 {
						t.Fatalf("%v/%v/%v/%d: residual %g", ord, post, tg, w, r)
					}
				}
			}
		}
	}
}

func TestSolveMany(t *testing.T) {
	m := buildRandom(t, 20, 0.2, 5)
	f, err := Factorize(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	bs := [][]float64{make([]float64, 20), make([]float64, 20)}
	bs[0][0] = 1
	bs[1][19] = 1
	xs, err := f.SolveMany(bs)
	if err != nil {
		t.Fatal(err)
	}
	for k := range xs {
		if r := Residual(m, xs[k], bs[k]); r > 1e-10 {
			t.Fatalf("rhs %d: residual %g", k, r)
		}
	}
}

func TestSingularReported(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 0, 1)
	b.Add(0, 1, 2)
	b.Add(1, 0, 2)
	b.Add(1, 1, 4)
	m, _ := b.Build()
	f, err := Factorize(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Singular() {
		t.Fatal("singular matrix not reported")
	}
}

func TestBenchmarkSuiteThroughPublicAPI(t *testing.T) {
	// The small suite end-to-end through the facade.
	for _, spec := range matgen.SmallSuite() {
		m := WrapCSC(spec.Gen())
		opts := DefaultOptions()
		opts.Workers = 2
		f, err := Factorize(m, opts)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		rhs := make([]float64, m.Order())
		for i := range rhs {
			rhs[i] = 1
		}
		x, err := f.Solve(rhs)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if r := Residual(m, x, rhs); r > 1e-9 {
			t.Fatalf("%s: residual %g", spec.Name, r)
		}
	}
}

func TestQuickPublicPipeline(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		b := NewBuilder(n)
		rowAbs := make([]float64, n)
		type e struct {
			i, j int
			v    float64
		}
		var es []e
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Float64() < 0.15 {
					v := rng.NormFloat64()
					es = append(es, e{i, j, v})
					rowAbs[i] += math.Abs(v)
				}
			}
		}
		for _, x := range es {
			b.Add(x.i, x.j, x.v)
		}
		for i := 0; i < n; i++ {
			b.Add(i, i, rowAbs[i]+1)
		}
		m, err := b.Build()
		if err != nil {
			return false
		}
		fac, err := Factorize(m, &Options{Ordering: MinDegree, Postorder: true, TaskGraph: EForestGraph, Workers: 1 + rng.Intn(3), MaxSupernode: 8, AmalgamationFill: 0.25})
		if err != nil {
			return false
		}
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		x, err := fac.Solve(rhs)
		if err != nil {
			return false
		}
		return Residual(m, x, rhs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
