package sparselu

// Full-size integration tests: the complete pipeline on the paper's
// actual matrix orders. Skipped under -short; the default `go test`
// run exercises them (a few seconds).

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/matgen"
)

// TestFullSizeOrsreg1 runs the complete pipeline on the full-size
// orsreg1 stand-in (n = 2205): analyze, factor in parallel, solve,
// refine, and check every reported statistic for plausibility.
func TestFullSizeOrsreg1(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size integration test")
	}
	m := WrapCSC(matgen.Orsreg1())
	if m.Order() != 2205 {
		t.Fatalf("order %d", m.Order())
	}
	opts := DefaultOptions()
	opts.Workers = 4
	a, err := Analyze(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.FillRatio < 5 || st.FillRatio > 100 {
		t.Fatalf("fill ratio %g implausible", st.FillRatio)
	}
	if st.Supernodes < 100 || st.Supernodes > st.Order {
		t.Fatalf("supernodes %d implausible", st.Supernodes)
	}
	f, err := a.Factorize(m)
	if err != nil {
		t.Fatal(err)
	}
	if f.Singular() {
		t.Fatal("orsreg1 should be nonsingular")
	}
	rng := rand.New(rand.NewSource(1))
	b := make([]float64, m.Order())
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, berr, _, err := f.SolveRefined(b, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if berr > 1e-12 {
		t.Fatalf("backward error %g", berr)
	}
	if r := Residual(m, x, b); r > 1e-12 {
		t.Fatalf("residual %g", r)
	}
	if g := f.PivotGrowth(); g <= 0 || g > 1e6 {
		t.Fatalf("pivot growth %g", g)
	}
}

// TestNearSingularPolicies pins the public robustness contract on a
// near-singular system (one exactly zero column, two columns scaled to
// ~1e-13·‖A‖∞): under PivotFail the solve reports ErrSingular with the
// failing column attached, while PivotPerturb plus a few refinement
// steps recovers a solution to near machine precision.
func TestNearSingularPolicies(t *testing.T) {
	a, zeroCol, _ := matgen.NearSingular(16, 16, 7)
	m := WrapCSC(a)
	n := m.Order()
	rng := rand.New(rand.NewSource(3))
	xtrue := make([]float64, n)
	for i := range xtrue {
		xtrue[i] = 1 + rng.Float64()
	}
	b := make([]float64, n)
	a.MulVec(xtrue, b)

	// Strict policy: factorization completes, Singular is set, and the
	// solve fails with the structured error naming the zero column.
	fail, err := Factorize(m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !fail.Singular() {
		t.Fatal("PivotFail: singular matrix not flagged")
	}
	if got := fail.SingularColumn(); got != zeroCol {
		t.Fatalf("PivotFail: singular column %d, want %d", got, zeroCol)
	}
	if _, err := fail.Solve(b); !errors.Is(err, ErrSingular) {
		t.Fatalf("PivotFail: Solve err = %v, want ErrSingular", err)
	}
	var se *SingularError
	if _, err := fail.Solve(b); !errors.As(err, &se) || se.Col != zeroCol {
		t.Fatalf("PivotFail: Solve err = %v, want *SingularError{Col: %d}", err, zeroCol)
	}

	// Perturbation policy: the same system factors cleanly, reports the
	// touched columns, and iterative refinement restores the accuracy.
	opts := DefaultOptions()
	opts.PivotPolicy = PivotPerturb
	opts.Workers = 4
	pert, err := Factorize(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if pert.Singular() {
		t.Fatal("PivotPerturb: factorization still flagged singular")
	}
	if pert.PivotPerturbations() == 0 {
		t.Fatal("PivotPerturb: no perturbations recorded on a singular system")
	}
	cols := pert.PerturbedColumns()
	found := false
	for _, c := range cols {
		if c == zeroCol {
			found = true
		}
	}
	if !found {
		t.Fatalf("PivotPerturb: perturbed columns %v miss the zero column %d", cols, zeroCol)
	}
	_, berr, _, err := pert.SolveRefined(b, 3, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if berr > 1e-10 {
		t.Fatalf("PivotPerturb: backward error %g after refinement, want ≤ 1e-10", berr)
	}
}

// TestFullSizePostorderingEffect verifies the Table 3 effect at full
// scale: postordering must reduce the supernode count on every matrix
// of the suite that fits a quick run.
func TestFullSizePostorderingEffect(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size integration test")
	}
	m := WrapCSC(matgen.Lnsp3937())
	with, err := Analyze(m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	noPO := DefaultOptions()
	noPO.Postorder = false
	without, err := Analyze(m, noPO)
	if err != nil {
		t.Fatal(err)
	}
	sn, snpo := without.Stats().Supernodes, with.Stats().Supernodes
	if snpo >= sn {
		t.Fatalf("postordering did not reduce supernodes at full scale: %d → %d", sn, snpo)
	}
	// Theorem 3 at full scale: same fill either way.
	if with.Stats().FactorNNZ != without.Stats().FactorNNZ {
		t.Fatalf("postordering changed |Ā|: %d vs %d", with.Stats().FactorNNZ, without.Stats().FactorNNZ)
	}
}

// TestFullSizeGraphVariantsAgree checks bitwise agreement of the two
// task graphs' factors at full scale on lns3937.
func TestFullSizeGraphVariantsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size integration test")
	}
	m := WrapCSC(matgen.Lns3937())
	b := make([]float64, m.Order())
	for i := range b {
		b[i] = 1
	}
	var xs [][]float64
	for _, tg := range []TaskGraph{SStarGraph, EForestGraph} {
		opts := DefaultOptions()
		opts.TaskGraph = tg
		opts.Workers = 4
		f, err := Factorize(m, opts)
		if err != nil {
			t.Fatal(err)
		}
		x, err := f.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		xs = append(xs, x)
	}
	for i := range xs[0] {
		if xs[0][i] != xs[1][i] {
			t.Fatalf("solutions differ at %d: %v vs %v", i, xs[0][i], xs[1][i])
		}
	}
}
