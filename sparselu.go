// Package sparselu is a parallel sparse LU factorization library for
// general unsymmetric matrices, reproducing Cosnard & Grigori, "Using
// Postordering and Static Symbolic Factorization for Parallel Sparse
// LU" (IPPS 2000).
//
// The pipeline is the paper's: a maximum transversal produces a
// zero-free diagonal, minimum degree on AᵀA reduces fill, a static
// symbolic factorization (George & Ng) computes a structure valid for
// every partial-pivoting row exchange, the LU elimination forest is
// postordered to enlarge supernodes and expose a block-upper-triangular
// form, L/U supernode partitioning with amalgamation yields dense
// blocks, and the numeric factorization runs BLAS-3 tasks in parallel
// under the eforest-guided task dependence graph with the least
// necessary dependences.
//
// # Quick start
//
//	b := sparselu.NewBuilder(3)
//	b.Add(0, 0, 4); b.Add(0, 1, 1)
//	b.Add(1, 0, 2); b.Add(1, 1, 5); b.Add(1, 2, 1)
//	b.Add(2, 1, 3); b.Add(2, 2, 6)
//	m, _ := b.Build()
//	f, _ := sparselu.Factorize(m, nil)
//	x, _ := f.Solve([]float64{1, 2, 3})
//
// The zero Options value is not useful; pass nil for the paper's
// defaults (minimum degree, postordering on, eforest task graph).
package sparselu

import (
	"fmt"
	"io"

	"repro/internal/sparse"
)

// Matrix is an immutable square sparse matrix in compressed sparse
// column form.
type Matrix struct {
	a *sparse.CSC
}

// Builder assembles a sparse matrix from (row, column, value) triplets.
// Duplicate entries are summed.
type Builder struct {
	t *sparse.Triplet
}

// NewBuilder returns a builder for an n×n matrix.
func NewBuilder(n int) *Builder {
	return &Builder{t: sparse.NewTriplet(n, n)}
}

// Add appends the entry (i, j, v). Indices are 0-based. Explicit zeros
// are kept in the structure.
func (b *Builder) Add(i, j int, v float64) {
	b.t.Add(i, j, v)
}

// Build finalizes the matrix.
func (b *Builder) Build() (*Matrix, error) {
	if b.t.NRows != b.t.NCols {
		return nil, fmt.Errorf("sparselu: matrix must be square")
	}
	return &Matrix{a: b.t.ToCSC()}, nil
}

// ReadMatrixMarket parses a MatrixMarket coordinate stream (real,
// integer or pattern; general, symmetric or skew-symmetric).
func ReadMatrixMarket(r io.Reader) (*Matrix, error) {
	a, err := sparse.ReadMatrixMarket(r)
	if err != nil {
		return nil, err
	}
	if a.NRows != a.NCols {
		return nil, fmt.Errorf("sparselu: matrix must be square, got %d×%d", a.NRows, a.NCols)
	}
	return &Matrix{a: a}, nil
}

// WriteMatrixMarket writes the matrix in MatrixMarket coordinate form.
func (m *Matrix) WriteMatrixMarket(w io.Writer) error {
	return sparse.WriteMatrixMarket(w, m.a)
}

// Order returns the dimension n of the n×n matrix.
func (m *Matrix) Order() int { return m.a.NCols }

// NNZ returns the number of stored entries.
func (m *Matrix) NNZ() int { return m.a.NNZ() }

// At returns the entry (i, j), or 0 when it is not stored.
func (m *Matrix) At(i, j int) float64 { return m.a.At(i, j) }

// MulVec returns A·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	y := make([]float64, m.a.NRows)
	m.a.MulVec(x, y)
	return y
}

// Scale returns a copy of the matrix with every entry multiplied by s.
func (m *Matrix) Scale(s float64) *Matrix {
	a := m.a.Clone()
	for k := range a.Val {
		a.Val[k] *= s
	}
	return &Matrix{a: a}
}

// CSC exposes the underlying storage to sibling packages inside this
// module. External users should treat Matrix as opaque.
func (m *Matrix) CSC() *sparse.CSC { return m.a }

// WrapCSC wraps an existing CSC matrix without copying; intended for the
// generators and command-line tools inside this module.
func WrapCSC(a *sparse.CSC) *Matrix { return &Matrix{a: a} }
