package sparselu

import (
	"time"

	"repro/internal/core"
	"repro/internal/ordering"
	"repro/internal/supernode"
	"repro/internal/taskgraph"
	"repro/internal/trace"
)

// ErrSingular is returned by the solve methods when the factorization
// met an exactly zero pivot under PivotFail. Use errors.As with
// *SingularError to recover the failing column.
var ErrSingular = core.ErrNumericallySingular

// SingularError is the structured form of ErrSingular, carrying the
// original column index of the first zero pivot.
type SingularError = core.SingularError

// ErrNonFinite is wrapped by factorization failures caused by NaN or
// Inf appearing in the factors; the parallel execution is canceled as
// soon as a kernel detects one.
var ErrNonFinite = core.ErrNonFinite

// ErrDeadlineExceeded is the cancellation cause when Options.Timeout
// expires before the numeric phase completes.
var ErrDeadlineExceeded = core.ErrDeadlineExceeded

// Ordering selects the fill-reducing column ordering.
type Ordering int

const (
	// MinDegree runs minimum degree on the pattern of AᵀA (the paper's
	// choice and the default).
	MinDegree Ordering = iota
	// NaturalOrder keeps the input ordering.
	NaturalOrder
	// RCM runs reverse Cuthill–McKee on the pattern of AᵀA.
	RCM
)

// PivotPolicy selects the numeric response to a pivot that the static
// row set of a panel cannot stabilize: static symbolic factorization
// admits no row exchanges outside each panel's fixed row set, so a
// tiny or zero pivot cannot be exchanged away.
type PivotPolicy int

const (
	// PivotFail (default) preserves the strict contract: a zero pivot
	// completes the factorization with Singular() set, and the solve
	// methods return a *SingularError naming the first affected column.
	PivotFail PivotPolicy = iota
	// PivotPerturb replaces any pivot with |u_kk| < √ε·‖A‖∞ by
	// ±√ε·‖A‖∞ (sign-preserving), the SuperLU_DIST strategy: the
	// factorization always completes and SolveRefined recovers the
	// lost accuracy. PivotPerturbations/PerturbedColumns report what
	// was touched.
	PivotPerturb
)

// TaskGraph selects the dependence structure driving the parallel
// numeric factorization.
type TaskGraph int

const (
	// EForestGraph is the paper's elimination-forest-guided graph with
	// only the least necessary dependences (default).
	EForestGraph TaskGraph = iota
	// SStarGraph is the baseline graph of the S* environment, which
	// serializes the updates of each column in ascending source order.
	SStarGraph
)

// Options configures analysis and factorization. The zero value is not
// meaningful; use DefaultOptions or pass nil to get the paper's
// configuration.
type Options struct {
	// Ordering is the fill-reducing ordering.
	Ordering Ordering
	// Postorder applies the paper's postordering of the LU elimination
	// forest, which enlarges supernodes and yields a block upper
	// triangular form.
	Postorder bool
	// TaskGraph picks the dependence structure.
	TaskGraph TaskGraph
	// Workers is the number of parallel workers for the numeric phase
	// (values below 1 mean serial execution).
	Workers int
	// SolveWorkers is the number of parallel workers for the
	// triangular solves (Solve, SolveMany, SolveTranspose,
	// SolveRefined, ConditionEstimate). 0 (the default) inherits
	// Workers. The solves execute one task per block column on
	// level-set schedules derived at analysis time and their results
	// are bitwise identical to the serial sweeps at every worker
	// count, so this is purely a latency knob. Solve scratch comes
	// from a pooled per-factorization workspace (core.SolveWorkspace):
	// after warm-up, solves allocate nothing beyond their result
	// slices, and concurrent solves on one factorization are safe.
	SolveWorkers int
	// AnalyzeWorkers is the number of parallel workers for the analysis
	// pipeline itself: independent column-etree subtrees of the static
	// symbolic factorization run concurrently and independent late
	// stages of the analysis overlap. Values below 2 keep the fully
	// serial pipeline. The analysis output is identical at every worker
	// count; Workers and SolveWorkers are unaffected.
	AnalyzeWorkers int
	// MaxSupernode caps the supernode width during amalgamation
	// (0 means 32).
	MaxSupernode int
	// AmalgamationFill is the fraction of explicit zeros a supernode
	// merge may introduce (negative means 0.25).
	AmalgamationFill float64
	// Equilibrate scales rows and columns to unit maxima before
	// factoring; solves transparently undo the scaling. Useful for
	// badly scaled systems.
	Equilibrate bool
	// Verify runs the debug invariant checks during analysis: postorder
	// invariance of the symbolic factorization (Theorems 1–3 of the
	// paper) and the least-dependence property of the task graph
	// (Theorem 4). Analysis fails loudly if an invariant is violated.
	Verify bool
	// Trace optionally records per-task execution events of the numeric
	// phase (worker, kind, column, start/stop timestamps) for the
	// analysis and export functions of internal/trace. The recorder must
	// have at least Workers buffers; nil disables tracing.
	Trace *trace.Recorder
	// PivotPolicy selects how pivots below the static threshold are
	// handled (default PivotFail).
	PivotPolicy PivotPolicy
	// FastMath opts the numeric phase into the relaxed kernel mode:
	// FMA and reordered accumulation with no bitwise-reproducibility
	// guarantee. Results satisfy the usual componentwise backward-error
	// bounds but may differ byte-for-byte across hosts and kernel
	// variants. The default false keeps the bitwise-deterministic
	// kernels. Triangular solves are always bitwise.
	FastMath bool
	// Timeout bounds the wall-clock duration of the parallel numeric
	// phase. When it expires the workers stop claiming tasks (one
	// atomic check per task claim) and factorization returns an error
	// wrapping ErrDeadlineExceeded. Zero means no limit.
	Timeout time.Duration
}

// DefaultOptions returns the paper's configuration: minimum degree,
// postordering on, eforest task graph, serial execution.
func DefaultOptions() *Options {
	return &Options{
		Ordering:         MinDegree,
		Postorder:        true,
		TaskGraph:        EForestGraph,
		Workers:          1,
		MaxSupernode:     32,
		AmalgamationFill: 0.25,
	}
}

func (o *Options) toCore() *core.Options {
	if o == nil {
		o = DefaultOptions()
	}
	ord := ordering.MinDegreeATA
	switch o.Ordering {
	case NaturalOrder:
		ord = ordering.Natural
	case RCM:
		ord = ordering.RCMATA
	}
	tg := taskgraph.EForest
	if o.TaskGraph == SStarGraph {
		tg = taskgraph.SStar
	}
	return &core.Options{
		Ordering:       ord,
		Postorder:      o.Postorder,
		TaskGraph:      tg,
		Workers:        o.Workers,
		SolveWorkers:   o.SolveWorkers,
		AnalyzeWorkers: o.AnalyzeWorkers,
		Amalgamation: supernode.AmalgamationOptions{
			MaxSize: o.MaxSupernode,
			MaxFill: o.AmalgamationFill,
		},
		Equilibrate: o.Equilibrate,
		Verify:      o.Verify,
		Trace:       o.Trace,
		PivotPolicy: core.PivotPolicy(o.PivotPolicy),
		FastMath:    o.FastMath,
		Timeout:     o.Timeout,
	}
}

// Stats summarizes an analysis in the terms of the paper's tables.
type Stats struct {
	// Order is the matrix dimension n.
	Order int
	// NNZ is the number of nonzeros of A.
	NNZ int
	// FactorNNZ is |Ā|, the entries of the static factors.
	FactorNNZ int
	// FillRatio is |Ā| / |A| (Table 1).
	FillRatio float64
	// Supernodes is the supernode count after amalgamation and
	// load-balance splitting — the panel count of the numeric phase.
	Supernodes int
	// StrictSupernodes is the count before amalgamation (Table 3's SN /
	// SNPO, depending on the Postorder option).
	StrictSupernodes int
	// SplitBlocks is the number of extra panels introduced by splitting
	// supernodes wider than the load-balance threshold.
	SplitBlocks int
	// MaxBlockWidth and AvgBlockWidth describe the final panel widths.
	MaxBlockWidth int
	AvgBlockWidth float64
	// ExplicitZeros is the number of explicitly stored zeros the
	// fill-ratio amalgamation admitted into the factor blocks, and
	// ExplicitZeroRatio their fraction of all stored factor entries.
	ExplicitZeros     int
	ExplicitZeroRatio float64
	// DiagonalBlocks is the number of trees in the LU eforest — the
	// diagonal blocks of the block-upper-triangular form (Table 3's
	// NoBlks).
	DiagonalBlocks int
	// Tasks and Edges describe the task dependence graph.
	Tasks, Edges int
	// TotalFlops estimates the numeric work; CriticalPathFlops the
	// weighted critical path of the task graph.
	TotalFlops, CriticalPathFlops float64
	// AnalyzeSeconds is the wall-clock duration of the analysis that
	// produced these stats. It is the only non-structural field: two
	// analyses of the same pattern agree on everything else.
	AnalyzeSeconds float64
}

// Analysis is the reusable structural phase: it depends only on the
// matrix pattern, so one Analysis can factor many matrices with the same
// structure.
type Analysis struct {
	s *core.Symbolic
}

// Analyze runs the structural pipeline on m.
func Analyze(m *Matrix, opts *Options) (*Analysis, error) {
	s, err := core.Analyze(m.a, opts.toCore())
	if err != nil {
		return nil, err
	}
	return &Analysis{s: s}, nil
}

// Stats returns the analysis summary.
func (a *Analysis) Stats() Stats {
	st := a.s.Stats
	return Stats{
		Order:             st.N,
		NNZ:               st.NNZA,
		FactorNNZ:         st.NNZFactors,
		FillRatio:         st.FillRatio,
		Supernodes:        st.Supernodes,
		StrictSupernodes:  st.StrictSN,
		SplitBlocks:       st.SplitBlocks,
		MaxBlockWidth:     st.MaxBlockWidth,
		AvgBlockWidth:     st.AvgBlockWidth,
		ExplicitZeros:     st.ExplicitZeros,
		ExplicitZeroRatio: st.ExplicitZeroRatio,
		DiagonalBlocks:    st.NumTrees,
		Tasks:             st.TaskCount,
		Edges:             st.EdgeCount,
		TotalFlops:        st.TotalFlops,
		CriticalPathFlops: st.CriticalPath,
		AnalyzeSeconds:    st.AnalyzeSeconds,
	}
}

// ReuseLevel reports how much of a previous analysis Reanalyze reused:
// "full" (identical pattern, previous analysis returned as-is), "delta"
// (only the changed column-etree subtrees were re-eliminated), or
// "none" (full re-analysis).
type ReuseLevel = core.ReuseLevel

// Reanalysis levels, from cheapest to most expensive.
const (
	ReuseFull  = core.ReuseFull
	ReuseDelta = core.ReuseDelta
	ReuseNone  = core.ReuseNone
)

// Reanalyze produces the analysis of m using this Analysis as a
// starting point. An identical pattern returns the receiver itself; a
// small pattern delta re-runs the static symbolic factorization only
// on the affected column-etree subtrees; anything larger falls back to
// a full Analyze with the receiver's options. The result is identical
// to a fresh Analyze in every structural field.
func (a *Analysis) Reanalyze(m *Matrix) (*Analysis, ReuseLevel, error) {
	s, level, err := core.Reanalyze(a.s, m.a)
	if err != nil {
		return nil, level, err
	}
	if s == a.s {
		return a, level, nil
	}
	return &Analysis{s: s}, level, nil
}

// Symbolic exposes the internal analysis to sibling packages in this
// module (the benchmark harness needs the task graph and cost model).
func (a *Analysis) Symbolic() *core.Symbolic { return a.s }

// Factorize performs the numeric factorization of m under this
// analysis; m must have the pattern the analysis was computed from.
func (a *Analysis) Factorize(m *Matrix) (*Factorization, error) {
	f, err := core.FactorizeWith(a.s, m.a)
	if err != nil {
		return nil, err
	}
	return &Factorization{f: f, m: m}, nil
}

// Factorization holds the numeric LU factors.
type Factorization struct {
	f *core.Factorization
	m *Matrix
}

// Factorize analyzes and factors m in one call.
func Factorize(m *Matrix, opts *Options) (*Factorization, error) {
	f, err := core.Factorize(m.a, opts.toCore())
	if err != nil {
		return nil, err
	}
	return &Factorization{f: f, m: m}, nil
}

// Solve solves A·x = b. b is not modified. The triangular sweeps run
// in parallel on Options.SolveWorkers workers (level-scheduled over
// the block columns) and the result is bitwise identical to the
// serial sweeps at every worker count; scratch comes from the
// factorization's pooled solve workspace, so steady-state solves
// allocate only the returned slice.
func (f *Factorization) Solve(b []float64) ([]float64, error) {
	return f.f.Solve(b)
}

// SolveMany solves A·X = B for several right-hand sides with blocked
// BLAS-3 triangular sweeps: B is packed once into a dense n×nrhs
// panel in the pooled solve workspace and each block-column task runs
// Dtrsm/Dgemm across all right-hand sides, which is substantially
// faster than repeated Solve calls once nrhs is more than a couple.
// Parallelism and bitwise determinism follow Solve.
func (f *Factorization) SolveMany(bs [][]float64) ([][]float64, error) {
	return f.f.SolveMany(bs)
}

// SolveTranspose solves Aᵀ·x = b. b is not modified. It runs on the
// transpose level schedules with the same worker count, workspace and
// bitwise-determinism guarantees as Solve.
func (f *Factorization) SolveTranspose(b []float64) ([]float64, error) {
	return f.f.SolveTranspose(b)
}

// SolveRefined solves A·x = b with up to maxIter steps of iterative
// refinement (tol ≤ 0 means machine precision). It returns the
// solution, the final scaled backward error and the number of
// refinement steps taken.
func (f *Factorization) SolveRefined(b []float64, maxIter int, tol float64) (x []float64, backwardError float64, steps int, err error) {
	return f.f.SolveRefined(f.m.a, b, maxIter, tol)
}

// ConditionEstimate returns an estimate of the 1-norm condition number
// κ₁(A) using the Hager/Higham method (like LAPACK's xGECON).
func (f *Factorization) ConditionEstimate() (float64, error) {
	return f.f.CondEstimate1(f.m.a)
}

// LogDet returns the sign of det(A) and log|det(A)|; sign 0 means the
// factorization is singular.
func (f *Factorization) LogDet() (sign, logAbs float64) {
	return f.f.LogDet()
}

// PivotGrowth returns max|Û| / max|A|, the element-growth stability
// indicator of the factorization.
func (f *Factorization) PivotGrowth() float64 {
	return f.f.PivotGrowth(f.m.a)
}

// Singular reports whether the factorization hit an exactly zero pivot.
func (f *Factorization) Singular() bool { return f.f.Singular() }

// SingularColumn returns the original column index of the first zero
// pivot under PivotFail, or -1 when the factorization is not singular.
func (f *Factorization) SingularColumn() int { return f.f.SingularColumn() }

// PivotPerturbations returns the number of pivots replaced by the
// static perturbation under PivotPerturb (always 0 under PivotFail).
func (f *Factorization) PivotPerturbations() int { return f.f.PivotPerturbations() }

// PerturbedColumns returns the original column indices whose pivots
// were perturbed, in ascending order (nil when none were).
func (f *Factorization) PerturbedColumns() []int { return f.f.PerturbedColumns() }

// PivotThreshold returns the magnitude √ε·‖A‖∞ below which pivots are
// perturbed under PivotPerturb (0 under PivotFail).
func (f *Factorization) PivotThreshold() float64 { return f.f.PivotThreshold() }

// Residual returns the scaled backward error ‖A·x − b‖∞ / (‖A‖∞‖x‖∞ +
// ‖b‖∞).
func Residual(m *Matrix, x, b []float64) float64 {
	return core.Residual(m.a, x, b)
}
